package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

// exportSnapshot writes the telemetry snapshot to its file sinks: the full
// snapshot as indented JSON to jsonPath, and the span log as a Chrome
// trace-event file to tracePath. Empty paths are skipped. Nothing is ever
// written to stdout — the golden-output contract reserves stdout for the
// rendered artifacts.
func exportSnapshot(snap telemetry.Snapshot, jsonPath, tracePath string) error {
	if jsonPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("metrics-json: %w", err)
		}
	}
	if tracePath != "" {
		data, err := snap.ChromeTrace()
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// compareAgainst loads a baseline snapshot — a file previously written by
// -metrics-json, or a live /metricsz endpoint when the argument is an
// http(s) URL — diffs the current snapshot against it, and prints the
// per-instrument report to w. It reports whether any watched instrument
// regressed past the threshold (the caller turns that into a non-zero
// exit).
func compareAgainst(cur telemetry.Snapshot, baseline string, watch []string, threshold float64, w io.Writer) (regressed bool, err error) {
	old, err := telemetry.LoadSnapshot(baseline)
	if err != nil {
		return false, err
	}
	cmp := telemetry.CompareSnapshots(old, cur, watch, threshold)
	fmt.Fprint(w, cmp.Text())
	return len(cmp.Regressions()) > 0, nil
}
