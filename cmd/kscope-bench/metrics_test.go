package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// smallOpt keeps the traced sessions in this file fast; the pipeline still
// runs every phase (analysis, hardening, interpretation).
var smallOpt = experiments.Options{Requests: 4, PerfRequests: 8, Runs: 1, FuzzIters: 4, Seed: 1}

// tracedSnapshot runs a small instrumented session covering both an
// analysis-driven artifact (Table 3 via AnalyzeAll) and an execution-driven
// one (Table 4), and returns the resulting snapshot.
func tracedSnapshot(t *testing.T) telemetry.Snapshot {
	t.Helper()
	reg := telemetry.New()
	sess := experiments.NewSession(smallOpt, 4, reg)
	if _, err := renderArtifacts(sess, []int{3, 4}, nil, nil); err != nil {
		t.Fatalf("renderArtifacts: %v", err)
	}
	return reg.Snapshot()
}

// TestMetricsExportStdoutSilent pins the output contract of the telemetry
// sinks: -metrics-json, -trace, and -compare-metrics write to their files
// and to the given writer (stderr in the CLI), never to stdout. Stdout is
// reserved for artifacts, so the golden-output byte-identity holds with
// telemetry on.
func TestMetricsExportStdoutSilent(t *testing.T) {
	snap := tracedSnapshot(t)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "metrics.json")
	tracePath := filepath.Join(dir, "trace.json")
	exportErr := exportSnapshot(snap, jsonPath, tracePath)
	var regressed bool
	var compareErr error
	if exportErr == nil {
		// Comparing a run against its own export must be regression-free.
		regressed, compareErr = compareAgainst(snap, jsonPath, defaultWatch, 0.10, io.Discard)
	}

	os.Stdout = orig
	w.Close()
	leaked, _ := io.ReadAll(r)

	if exportErr != nil {
		t.Fatalf("exportSnapshot: %v", exportErr)
	}
	if compareErr != nil {
		t.Fatalf("compareAgainst: %v", compareErr)
	}
	if regressed {
		t.Error("self-comparison reported a regression")
	}
	if len(leaked) != 0 {
		t.Errorf("telemetry sinks wrote %d bytes to stdout: %q", len(leaked), leaked)
	}
	for _, p := range []string{jsonPath, tracePath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("%s not written (err=%v)", p, err)
		}
	}
}

// chromeTrace mirrors the Chrome trace-event JSON file layout.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string   `json:"name"`
		Phase string   `json:"ph"`
		TS    *float64 `json:"ts"`
		Dur   float64  `json:"dur"`
		PID   int      `json:"pid"`
		TID   int      `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceCoversPipeline asserts the span trace of an instrumented run is
// valid Chrome trace JSON and covers every pipeline phase: artifact driver,
// pool jobs, analysis stages, solver, and interpreter.
func TestTraceCoversPipeline(t *testing.T) {
	snap := tracedSnapshot(t)

	names := map[string]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"experiments/analyze-all",
		"experiments/analyze-cell",
		"experiments/table4",
		"experiments/table4-app",
		"core/analyze",
		"core/stage/fallback",
		"core/stage/optimistic",
		"core/instrument",
		"pointsto/build",
		"pointsto/solve",
		"interp/run",
	} {
		if !names[want] {
			t.Errorf("trace is missing a %q span", want)
		}
	}

	data, err := snap.ChromeTrace()
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	complete := 0
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "X":
			complete++
			if ev.Name == "" || ev.TS == nil || *ev.TS < 0 || ev.Dur < 0 || ev.PID != 1 || ev.TID < 0 {
				t.Fatalf("malformed complete event: %+v", ev)
			}
		case "M":
			// process/thread metadata
		default:
			t.Fatalf("unexpected event phase %q", ev.Phase)
		}
	}
	if complete != len(snap.Spans) {
		t.Errorf("trace has %d complete events, snapshot has %d spans", complete, len(snap.Spans))
	}
}

// TestTracedSnapshotHistograms asserts the acceptance-level histogram
// surface: delta sizes and pool-job latency expose p50/p90/p99 after a run.
func TestTracedSnapshotHistograms(t *testing.T) {
	snap := tracedSnapshot(t)
	for _, name := range []string{"pointsto/delta/size", "pointsto/pts/size", "runner/job-latency-ns"} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("snapshot is missing histogram %q", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("histogram %q observed nothing", name)
		}
		if h.P50 > h.P90 || h.P90 > h.P99 || h.P99 > h.Max {
			t.Errorf("histogram %q has non-monotone quantiles: %+v", name, h)
		}
	}
}

// TestCompareRegressionExit drives the -compare-metrics decision: a watched
// counter growing past the threshold regresses (non-zero exit in the CLI);
// within threshold, or unwatched, it does not.
func TestCompareRegressionExit(t *testing.T) {
	oldReg := telemetry.New()
	oldReg.Counter("pointsto/worklist/pops").Add(100)
	curReg := telemetry.New()
	curReg.Counter("pointsto/worklist/pops").Add(150)

	baseline := filepath.Join(t.TempDir(), "old.json")
	data, err := json.Marshal(oldReg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var report strings.Builder
	regressed, err := compareAgainst(curReg.Snapshot(), baseline, []string{"pointsto/worklist/pops"}, 0.10, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("+50% on a watched counter at 10% threshold did not regress")
	}
	if !strings.Contains(report.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", report.String())
	}

	if regressed, err = compareAgainst(curReg.Snapshot(), baseline, []string{"pointsto/worklist/pops"}, 1.0, io.Discard); err != nil || regressed {
		t.Errorf("within-threshold growth regressed (err=%v)", err)
	}
	if regressed, err = compareAgainst(curReg.Snapshot(), baseline, nil, 0.10, io.Discard); err != nil || regressed {
		t.Errorf("unwatched growth regressed (err=%v)", err)
	}

	if _, err := compareAgainst(curReg.Snapshot(), filepath.Join(t.TempDir(), "missing.json"), nil, 0.10, io.Discard); err == nil {
		t.Error("missing baseline file did not error")
	}
}

// TestCompareAgainstURL gates against a *live* baseline: -compare-metrics
// pointed at a /metricsz-shaped URL must flag an injected regression on a
// watched counter and stay quiet when growth is under threshold.
func TestCompareAgainstURL(t *testing.T) {
	oldReg := telemetry.New()
	oldReg.Counter("serve/cache/misses").Add(100)
	payload, err := json.Marshal(oldReg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()

	regressedReg := telemetry.New()
	regressedReg.Counter("serve/cache/misses").Add(200) // injected +100%

	var report strings.Builder
	regressed, err := compareAgainst(regressedReg.Snapshot(), ts.URL+"/metricsz",
		[]string{"serve/cache/misses"}, 0.10, &report)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("injected +100% on a watched counter did not regress against the URL baseline")
	}
	if !strings.Contains(report.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", report.String())
	}

	steadyReg := telemetry.New()
	steadyReg.Counter("serve/cache/misses").Add(105)
	if regressed, err = compareAgainst(steadyReg.Snapshot(), ts.URL+"/metricsz",
		[]string{"serve/cache/misses"}, 0.10, io.Discard); err != nil || regressed {
		t.Errorf("under-threshold growth regressed against the URL baseline (err=%v)", err)
	}

	ts.Close()
	if _, err := compareAgainst(steadyReg.Snapshot(), ts.URL, nil, 0.10, io.Discard); err == nil {
		t.Error("unreachable baseline URL did not error")
	}
}
