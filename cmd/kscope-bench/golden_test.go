package main

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pointsto"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenOpt mirrors the fast full-matrix options used across the test suite;
// the artifacts still cover every app, configuration, and driver path.
var goldenOpt = experiments.Options{Requests: 40, PerfRequests: 200, Runs: 2, FuzzIters: 40, Seed: 1}

// renderDeterministic renders every deterministic artifact the CLI can emit,
// exactly as `kscope-bench -all` would order them. Figure 13 is deliberately
// absent: its cells are wall-clock throughput and differ between any two
// runs, serial or not. reg may be nil (telemetry off) — the rendered bytes
// must not depend on it either way.
func renderDeterministic(t *testing.T, parallel int, reg *telemetry.Registry) string {
	t.Helper()
	sess := experiments.NewSession(goldenOpt, parallel, reg)
	out, err := renderArtifacts(sess,
		[]int{2, 3, 4, 5},
		[]int{1, 10, 11, 12},
		[]string{"debloat", "graded", "incremental"})
	if err != nil {
		t.Fatalf("renderArtifacts: %v", err)
	}
	return strings.Join(out, "\n") + "\n"
}

// TestGoldenOutput is the pipeline's end-to-end determinism contract: the
// full deterministic artifact set matches the checked-in golden file
// byte-for-byte, at every worker-pool width. This subsumes the older
// runner-level parallel-vs-serial comparison — any nondeterminism (map
// iteration, worker interleaving, solver strategy divergence) and any
// unintended change to the rendered numbers shows up as a diff here.
// Regenerate with: go test ./cmd/kscope-bench -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation matrix")
	}
	golden := filepath.Join("testdata", "golden", "artifacts.txt")
	ref := renderDeterministic(t, 1, nil)
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(ref), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if ref != string(want) {
		t.Errorf("-parallel 1 output diverges from %s (regenerate with -update if the change is intended):\n%s",
			golden, firstDiff(string(want), ref))
	}
	for _, p := range []int{4, 8} {
		if got := renderDeterministic(t, p, nil); got != ref {
			t.Errorf("-parallel %d output diverges from -parallel 1:\n%s", p, firstDiff(ref, got))
		}
	}
	// Tracing must be a pure observer: with a live registry collecting spans
	// and histograms the artifacts stay byte-identical at every pool width.
	for _, p := range []int{1, 4, 8} {
		reg := telemetry.New()
		if got := renderDeterministic(t, p, reg); got != ref {
			t.Errorf("-parallel %d output with tracing on diverges from baseline:\n%s", p, firstDiff(ref, got))
		}
		if len(reg.Snapshot().Spans) == 0 {
			t.Errorf("-parallel %d traced render recorded no spans", p)
		}
	}
	// The parallel wave solver (-parallel-solve) must be invisible to the
	// artifacts: with every analysis solved by the level-parallel strategy —
	// at 1 (inline phase-separated), 4, and 8 workers — the rendered bytes
	// stay identical to the sequential golden reference. This is the
	// byte-identity acceptance gate for the parallel strategy at the CLI
	// surface.
	for _, n := range []int{1, 4, 8} {
		prevSolve := pointsto.SetDefaultParallel(n)
		got := renderDeterministic(t, 1, nil)
		pointsto.SetDefaultParallel(prevSolve)
		if got != ref {
			t.Errorf("-parallel-solve %d output diverges from sequential golden:\n%s", n, firstDiff(ref, got))
		}
	}
	// Hash-consed set interning (-intern) must be invisible to the
	// artifacts: with every analysis sharing canonical set storage under
	// copy-on-write, the rendered bytes stay identical to the plain golden
	// reference — both serially and under a parallel worker pool, where
	// concurrently-built analyses each own a private pool. This is the
	// byte-identity acceptance gate for interning at the CLI surface.
	prevIntern := pointsto.SetDefaultIntern(true)
	for _, p := range []int{1, 4} {
		if got := renderDeterministic(t, p, nil); got != ref {
			t.Errorf("-intern output at -parallel %d diverges from plain golden:\n%s", p, firstDiff(ref, got))
		}
	}
	// And composed with the parallel wave solver, which interns only at
	// level barriers.
	prevSolve := pointsto.SetDefaultParallel(4)
	got := renderDeterministic(t, 1, nil)
	pointsto.SetDefaultParallel(prevSolve)
	pointsto.SetDefaultIntern(prevIntern)
	if got != ref {
		t.Errorf("-intern -parallel-solve 4 output diverges from plain golden:\n%s", firstDiff(ref, got))
	}
	// Offline preprocessing must be invisible to the artifacts: with HVN +
	// hybrid cycle detection disabled the rendered bytes stay identical to
	// the (prep-on) golden reference at every pool width. This is the
	// PWC-policy contract — prep may only merge what the online solver would
	// have merged anyway.
	prev := pointsto.SetDefaultPrep(false)
	defer pointsto.SetDefaultPrep(prev)
	for _, p := range []int{1, 4, 8} {
		if got := renderDeterministic(t, p, nil); got != ref {
			t.Errorf("-parallel %d output without preprocessing diverges from baseline:\n%s", p, firstDiff(ref, got))
		}
	}
}

// firstDiff locates the first differing line between two artifact dumps.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			return strings.Join([]string{
				"line " + strconv.Itoa(i+1) + ":",
				"  want: " + lw,
				"  got:  " + lg,
			}, "\n")
		}
	}
	return "(equal)"
}
