package main

import (
	"fmt"

	"repro/internal/experiments"
)

// renderArtifacts regenerates the requested tables, figures, and extension
// experiments on one session, in the paper's order, and returns their texts.
// Analysis-only artifacts share a single AnalyzeAll pass. An unknown table,
// figure, or extension name is an error.
func renderArtifacts(sess *experiments.Session, tables, figs []int, exts []string) ([]string, error) {
	var data []*experiments.AppData
	needData := func() []*experiments.AppData {
		if data == nil {
			data = sess.AnalyzeAll()
		}
		return data
	}

	var out []string
	for _, f := range figs {
		if f == 1 {
			out = append(out, sess.Figure1())
		}
	}
	for _, t := range tables {
		switch t {
		case 2:
			out = append(out, experiments.Table2())
		case 3:
			out = append(out, experiments.Table3(needData()))
		case 4:
			out = append(out, sess.Table4())
		case 5:
			out = append(out, sess.Table5())
		default:
			return nil, fmt.Errorf("no table %d", t)
		}
	}
	for _, f := range figs {
		switch f {
		case 1:
			// already emitted first, matching the paper's order
		case 10:
			out = append(out, experiments.Figure10(needData()))
		case 11:
			out = append(out, experiments.Figure11(needData()))
		case 12:
			out = append(out, experiments.Figure12(needData()))
		case 13:
			out = append(out, sess.Figure13())
		default:
			return nil, fmt.Errorf("no figure %d", f)
		}
	}
	for _, e := range exts {
		switch e {
		case "debloat":
			out = append(out, sess.ExtDebloat())
		case "graded":
			out = append(out, sess.ExtGraded())
		case "incremental":
			out = append(out, experiments.ExtIncremental())
		default:
			return nil, fmt.Errorf("no extension %q", e)
		}
	}
	return out, nil
}
