// Command kaleidoscope runs the IGO pointer analysis on a MiniC source file
// and reports points-to sets, likely invariants, CFI policies, and (with
// -run) a monitored execution — the CLI equivalent of the paper's analysis
// pipeline.
//
// Usage:
//
//	kaleidoscope [flags] file.mc
//	kaleidoscope [flags] -app mbedtls
//
// Flags:
//
//	-config NAME   invariant configuration: baseline, ctx, pa, pwc,
//	               ctx-pa, ctx-pwc, pa-pwc, all (default all)
//	-pts           print points-to sets of top-level pointers
//	-cfi           print the CFI policies of both memory views
//	-introspect    run the §4.1 introspection framework and print its report
//	-run           execute main() under monitoring
//	-inputs LIST   comma-separated integer input stream for -run
//	-ir            dump the compiled KIR module
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/introspect"
	"repro/internal/invariant"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

func main() {
	var (
		configName = flag.String("config", "all", "invariant configuration (baseline|ctx|pa|pwc|ctx-pa|ctx-pwc|pa-pwc|all)")
		appName    = flag.String("app", "", "analyze a built-in workload instead of a file")
		showPts    = flag.Bool("pts", false, "print points-to sets")
		showCFI    = flag.Bool("cfi", false, "print CFI policies for both memory views")
		doIntro    = flag.Bool("introspect", false, "run the introspection framework")
		doRun      = flag.Bool("run", false, "execute main() under monitoring")
		inputsFlag = flag.String("inputs", "", "comma-separated inputs for -run")
		dumpIR     = flag.Bool("ir", false, "dump the compiled KIR module")
	)
	flag.Parse()

	cfg, err := parseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	mod, err := loadModule(*appName, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Println(mod)
	}

	if *doIntro {
		fw := introspect.New()
		a := pointsto.New(mod, invariant.Config{})
		a.SetTracer(fw)
		a.Solve()
		fmt.Print(fw.Report())
	}

	s := core.Analyze(mod, cfg)
	fmt.Printf("analysis: %s | %d objects, %d constraint nodes, %d solver iterations\n",
		cfg.Name(), len(s.Optimistic.Objects()), s.Optimistic.NodeCount(), s.Optimistic.Stats().Iterations)
	fmt.Printf("likely invariants assumed: %d (monitor sites: %d)\n",
		len(s.Invariants()), s.Optimistic.Stats().MonitorSites)
	for _, rec := range s.Invariants() {
		fmt.Printf("  [%s] #%d: %s\n", rec.Kind, rec.Site, rec.Desc)
	}

	if *showPts {
		fmt.Println("\npoints-to sets (optimistic | fallback sizes):")
		for _, p := range s.Population() {
			refs := s.Optimistic.PointsTo(p.Fn, p.Reg)
			label := p.Fn + ":" + p.Reg
			if p.Reg == "" {
				label = "ret(" + p.Fn + ")"
			}
			var names []string
			for _, ref := range refs {
				names = append(names, ref.String())
			}
			fbSize := s.Fallback.SizeOf(p)
			fmt.Printf("  %-30s %2d | %2d  {%s}\n", label, len(refs), fbSize, strings.Join(names, ", "))
		}
	}

	h := s.Harden()
	if *showCFI {
		fmt.Println("\noptimistic memory view:")
		fmt.Print(h.Optimistic.Describe())
		fmt.Println("fallback memory view:")
		fmt.Print(h.Fallback.Describe())
	}

	if *doRun {
		inputs, err := parseInputs(*inputsFlag)
		if err != nil {
			fatal(err)
		}
		if *appName != "" && *inputsFlag == "" {
			inputs = workload.ByName(*appName).Requests(20, 1)
		}
		e := h.NewExecution(true)
		tr := e.Run("main", inputs)
		fmt.Printf("\nexecution: steps=%d memops=%d outputs=%v\n", tr.Steps, tr.MemOps, tr.Outputs)
		if tr.Err != nil {
			fmt.Printf("execution fault: %v\n", tr.Err)
		} else {
			fmt.Printf("result: %d\n", tr.Result)
		}
		exec, total := tr.BranchCoverage()
		fmt.Printf("coverage: %d/%d branch edges, %d monitor sites fired, %d monitor checks, %d CFI lookups\n",
			exec, total, tr.MonitorsExecuted(), e.Runtime.ChecksPerformed, e.Runtime.CFILookups)
		if e.Switcher.Switched() {
			fmt.Printf("memory view switched to fallback; violations:\n")
			for _, v := range e.Switcher.Violations() {
				fmt.Printf("  %s\n", v)
			}
		} else {
			fmt.Println("no likely-invariant violations: optimistic memory view held")
		}
	}
}

func parseConfig(name string) (invariant.Config, error) {
	switch strings.ToLower(name) {
	case "baseline", "none":
		return invariant.Config{}, nil
	case "ctx":
		return invariant.Config{Ctx: true}, nil
	case "pa":
		return invariant.Config{PA: true}, nil
	case "pwc":
		return invariant.Config{PWC: true}, nil
	case "ctx-pa":
		return invariant.Config{Ctx: true, PA: true}, nil
	case "ctx-pwc":
		return invariant.Config{Ctx: true, PWC: true}, nil
	case "pa-pwc":
		return invariant.Config{PA: true, PWC: true}, nil
	case "all", "kaleidoscope":
		return invariant.All(), nil
	}
	return invariant.Config{}, fmt.Errorf("unknown configuration %q", name)
}

func loadModule(appName string, args []string) (*ir.Module, error) {
	if appName != "" {
		app := workload.ByName(appName)
		if app == nil {
			return nil, fmt.Errorf("unknown workload %q", appName)
		}
		return app.Module()
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: kaleidoscope [flags] file.mc (or -app NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return minic.Compile(args[0], string(src))
}

func parseInputs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kaleidoscope:", err)
	os.Exit(1)
}
