package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/invariant"
)

func TestParseConfig(t *testing.T) {
	cases := map[string]invariant.Config{
		"baseline":     {},
		"none":         {},
		"ctx":          {Ctx: true},
		"pa":           {PA: true},
		"pwc":          {PWC: true},
		"ctx-pa":       {Ctx: true, PA: true},
		"ctx-pwc":      {Ctx: true, PWC: true},
		"pa-pwc":       {PA: true, PWC: true},
		"all":          invariant.All(),
		"kaleidoscope": invariant.All(),
		"ALL":          invariant.All(), // case-insensitive
	}
	for name, want := range cases {
		got, err := parseConfig(name)
		if err != nil {
			t.Errorf("parseConfig(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("parseConfig(%q) = %+v, want %+v", name, got, want)
		}
	}
	if _, err := parseConfig("bogus"); err == nil {
		t.Error("parseConfig accepted bogus")
	}
}

func TestParseInputs(t *testing.T) {
	got, err := parseInputs("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseInputs = %v, %v", got, err)
	}
	if got, err := parseInputs(""); err != nil || got != nil {
		t.Errorf("empty inputs = %v, %v", got, err)
	}
	if _, err := parseInputs("1,x"); err == nil {
		t.Error("parseInputs accepted non-integer")
	}
}

func TestLoadModuleFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	if err := os.WriteFile(path, []byte("int main() { return 7; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadModule("", []string{path})
	if err != nil {
		t.Fatalf("loadModule: %v", err)
	}
	if m.Func("main") == nil {
		t.Error("main missing")
	}
	if _, err := loadModule("", nil); err == nil {
		t.Error("no-args load succeeded")
	}
	if _, err := loadModule("", []string{filepath.Join(dir, "missing.mc")}); err == nil {
		t.Error("missing-file load succeeded")
	}
}

func TestLoadModuleFromWorkload(t *testing.T) {
	m, err := loadModule("tinydtls", nil)
	if err != nil {
		t.Fatalf("loadModule: %v", err)
	}
	if m.Func("main") == nil {
		t.Error("main missing")
	}
	if _, err := loadModule("no-such-app", nil); err == nil {
		t.Error("unknown workload load succeeded")
	}
}

func TestLoadModuleTestdata(t *testing.T) {
	m, err := loadModule("", []string{filepath.Join("..", "..", "testdata", "demo.mc")})
	if err != nil {
		t.Fatalf("loadModule(testdata/demo.mc): %v", err)
	}
	if m.Func("main") == nil || m.Func("hello") == nil {
		t.Error("demo module incomplete")
	}
}
