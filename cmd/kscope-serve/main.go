// Command kscope-serve is the analysis-as-a-service daemon: a long-running
// HTTP/JSON server that accepts MiniC programs and answers points-to,
// CFI-target, and invariant queries on demand, with a content-hash analysis
// cache, bounded admission, and per-request solve budgets. See docs/API.md
// for the endpoint reference and docs/RUNBOOK.md for operations.
//
// Modes:
//
//	kscope-serve [flags]                         run the daemon (default)
//	kscope-serve -loadgen [flags]                drive load at a running daemon,
//	                                             report p50/p99, gate on SLOs
//	kscope-serve -smoke                          self-contained CI smoke: start an
//	                                             in-process daemon, health-check it,
//	                                             run ~2s of load, one query
//	                                             round-trip, clean shutdown
//
// Daemon flags:
//
//	-addr ADDR            listen address (default 127.0.0.1:8350)
//	-max-body N           request body cap in bytes (default 1 MiB)
//	-max-inflight N       concurrent solve slots (default GOMAXPROCS)
//	-queue-timeout D      max admission wait before shedding (default 2s)
//	-solve-steps N        per-stage solver step budget, 0 = unlimited
//	-solve-timeout D      per-request solve wall-clock budget, 0 = unlimited
//	-max-programs N       distinct cached programs before FIFO eviction
//	-retry-after D        Retry-After hint on 503 responses (default 1s)
//	-parallel-solve N     solve every analysis with the parallel wave solver
//	                      at N workers (0 = sequential unless a request sets
//	                      "parallel": true; results are byte-identical)
//	-fault-seed N         arm the seeded fault-injection plan N (0 = off),
//	                      for chaos-testing the daemon
//
// Loadgen flags:
//
//	-target URL           daemon base URL (default http://127.0.0.1:8350)
//	-concurrency N        concurrent client sessions (default 8)
//	-duration D           how long to drive load (default 2s)
//	-slo-p50 D            fail (exit 1) if client-observed p50 exceeds D
//	-slo-p99 D            fail (exit 1) if client-observed p99 exceeds D
//	-slo-errors RATE      fail (exit 1) if hard-error rate exceeds RATE
//	                      (default 0; 503 sheds never count as errors)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8350", "listen address")
		maxBody      = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max admission wait before shedding")
		solveSteps   = flag.Int64("solve-steps", 0, "per-stage solver step budget (0 = unlimited)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-request solve wall clock (0 = unlimited)")
		maxPrograms  = flag.Int("max-programs", 128, "distinct cached programs before eviction")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 503s")
		parallel     = flag.Int("parallel-solve", 0, "parallel wave solver workers per analysis (0 = sequential)")
		faultSeed    = flag.Int64("fault-seed", 0, "arm seeded fault injection (0 = off)")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of the daemon")
		target      = flag.String("target", "http://127.0.0.1:8350", "loadgen: daemon base URL")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent client sessions")
		duration    = flag.Duration("duration", 2*time.Second, "loadgen: run length")
		sloP50      = flag.Duration("slo-p50", 0, "loadgen: p50 latency SLO (0 = unchecked)")
		sloP99      = flag.Duration("slo-p99", 0, "loadgen: p99 latency SLO (0 = unchecked)")
		sloErrors   = flag.Float64("slo-errors", 0, "loadgen: max hard-error rate")

		smoke = flag.Bool("smoke", false, "self-contained smoke run (CI)")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxBodyBytes: *maxBody,
		MaxInflight:  *maxInflight,
		QueueTimeout: *queueTimeout,
		SolveSteps:   *solveSteps,
		SolveTimeout: *solveTimeout,
		MaxPrograms:  *maxPrograms,
		RetryAfter:   *retryAfter,
		Parallel:     *parallel,
		Metrics:      telemetry.New(),
	}
	if *faultSeed != 0 {
		plan := faultinject.NewPlan(*faultSeed)
		cfg.Faults = plan
		fmt.Fprintf(os.Stderr, "kscope-serve: chaos mode: %s\n", plan)
	}
	switch {
	case *smoke:
		os.Exit(runSmoke(cfg))
	case *loadgen:
		os.Exit(runLoadgen(*target, *concurrency, *duration,
			serve.SLO{MaxP50: *sloP50, MaxP99: *sloP99, MaxErrorRate: *sloErrors}))
	default:
		os.Exit(runDaemon(*addr, cfg))
	}
}

// runDaemon serves until SIGINT/SIGTERM, then drains in-flight requests.
func runDaemon(addr string, cfg serve.Config) int {
	srv := serve.New(cfg)
	hs := &http.Server{Addr: addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "kscope-serve: listening on http://%s (%d solve slots, budget %d steps/stage)\n",
		addr, capacityOf(cfg), cfg.SolveSteps)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "kscope-serve:", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "kscope-serve: shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "kscope-serve: shutdown:", err)
		return 1
	}
	return 0
}

func capacityOf(cfg serve.Config) int {
	if cfg.MaxInflight > 0 {
		return cfg.MaxInflight
	}
	return -1 // resolved to GOMAXPROCS inside serve.New
}

// runLoadgen drives load at a running daemon and gates on the SLO.
func runLoadgen(target string, concurrency int, duration time.Duration, slo serve.SLO) int {
	rep, err := serve.RunLoad(context.Background(), serve.LoadOpts{
		Target:      target,
		Concurrency: concurrency,
		Duration:    duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kscope-serve -loadgen:", err)
		return 2
	}
	fmt.Print(rep.Text())
	if violations := rep.SLOViolations(slo); len(violations) != 0 {
		fmt.Fprintln(os.Stderr, "SLO gate FAILED:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("SLO gate passed")
	return 0
}

// runSmoke is the CI gate: an in-process daemon on an ephemeral port, a
// /healthz check, ~2s of generated load, one verified query round-trip,
// and a clean graceful shutdown — any step failing fails the run.
func runSmoke(cfg serve.Config) int {
	fail := func(step string, err error) int {
		fmt.Fprintf(os.Stderr, "serve-smoke: %s: %v\n", step, err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen", err)
	}
	srv := serve.New(cfg)
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "serve-smoke: daemon on %s\n", base)

	// 1. The daemon is alive and on its optimistic view.
	var health struct{ Status, View string }
	if err := getJSON(base+"/healthz", &health); err != nil {
		return fail("/healthz", err)
	}
	if health.Status != "ok" || health.View != "optimistic" {
		return fail("/healthz", fmt.Errorf("status=%q view=%q", health.Status, health.View))
	}

	// 2. Two seconds of concurrent load with a generous latency SLO and a
	// zero-hard-error budget.
	rep, err := serve.RunLoad(context.Background(), serve.LoadOpts{
		Target: base, Concurrency: 8, Duration: 2 * time.Second,
	})
	if err != nil {
		return fail("loadgen", err)
	}
	fmt.Print(rep.Text())
	if violations := rep.SLOViolations(serve.SLO{MaxP99: 2 * time.Second}); len(violations) != 0 {
		return fail("SLO gate", fmt.Errorf("%s", strings.Join(violations, "; ")))
	}
	if rep.OK == 0 {
		return fail("loadgen", fmt.Errorf("no successful requests"))
	}

	// 3. One verified query round-trip: a pointer query whose fallback set
	// must be non-empty.
	body := strings.NewReader(`{"name":"smoke","source":"int g;\nint* pick() { return &g; }\nint main() { int* p; p = pick(); return *p; }","fn":"pick"}`)
	resp, err := http.Post(base+"/pointsto", "application/json", body)
	if err != nil {
		return fail("/pointsto", err)
	}
	var pts struct {
		Fallback []string `json:"fallback"`
	}
	err = json.NewDecoder(resp.Body).Decode(&pts)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(pts.Fallback) == 0 {
		return fail("/pointsto", fmt.Errorf("status=%d fallback=%v err=%v", resp.StatusCode, pts.Fallback, err))
	}
	fmt.Fprintf(os.Stderr, "serve-smoke: query round-trip ok (pick() -> %v)\n", pts.Fallback)

	// 4. Clean shutdown.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fail("shutdown", err)
	}
	fmt.Fprintln(os.Stderr, "serve-smoke: clean shutdown; PASS")
	return 0
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
