// Command kscope-serve is the analysis-as-a-service daemon: a long-running
// HTTP/JSON server that accepts MiniC programs and answers points-to,
// CFI-target, and invariant queries on demand, with a content-hash analysis
// cache, bounded admission, and per-request solve budgets. See docs/API.md
// for the endpoint reference and docs/RUNBOOK.md for operations.
//
// Modes:
//
//	kscope-serve [flags]                         run the daemon (default)
//	kscope-serve -loadgen [flags]                drive load at a running daemon,
//	                                             report p50/p99, gate on SLOs
//	kscope-serve -smoke                          self-contained CI smoke: start an
//	                                             in-process daemon, health-check it,
//	                                             run ~2s of load, one query
//	                                             round-trip, scrape /metricsz
//	                                             (Prometheus) and /tracez, gate a
//	                                             live metrics comparison, clean
//	                                             shutdown
//
// Daemon flags:
//
//	-addr ADDR            listen address (default 127.0.0.1:8350)
//	-max-body N           request body cap in bytes (default 1 MiB)
//	-max-inflight N       concurrent solve slots (default GOMAXPROCS)
//	-queue-timeout D      max admission wait before shedding (default 2s)
//	-solve-steps N        per-stage solver step budget, 0 = unlimited
//	-solve-timeout D      per-request solve wall-clock budget, 0 = unlimited
//	-max-programs N       distinct cached programs before FIFO eviction
//	-cache-dir DIR        back the analysis cache with the crash-safe
//	                      persistent store in DIR: solved results are spilled
//	                      to disk and warm-loaded on restart (/readyz turns
//	                      200 when the warm-load finishes); corrupt records
//	                      are quarantined under DIR/quarantine and re-solved
//	-drain-grace D        after SIGTERM, keep the listener open for D while
//	                      refusing new POST work with a typed 503 (so load
//	                      balancers observe /readyz turn 503 before the
//	                      socket closes); default 0
//	-retry-after D        Retry-After hint on 503 responses (default 1s)
//	-parallel-solve N     solve every analysis with the parallel wave solver
//	                      at N workers (0 = sequential unless a request sets
//	                      "parallel": true; results are byte-identical)
//	-intern               hash-cons points-to sets during every solve
//	                      (copy-on-write shared storage; results are
//	                      byte-identical, so this only cuts memory — a
//	                      request can also opt in with "intern": true)
//	-fault-seed N         arm the seeded fault-injection plan N (0 = off),
//	                      for chaos-testing the daemon
//	-fault-list           print every fault-injection site and exit
//	-access-log DEST      JSON-lines access log: "off" (default), "stderr",
//	                      "stdout", or a file path (appended)
//	-trace-recent N       request traces kept in the /tracez recent ring
//	                      (default 64)
//	-trace-slowest N      slowest ring-evicted traces kept anyway (default 8)
//	-no-trace             disable request tracing entirely (spans fall back
//	                      to the process-global registry)
//
// Loadgen flags:
//
//	-target URL           daemon base URL (default http://127.0.0.1:8350)
//	-concurrency N        concurrent client sessions (default 8)
//	-duration D           how long to drive load (default 2s)
//	-slo-p50 D            fail (exit 1) if client-observed p50 exceeds D
//	-slo-p99 D            fail (exit 1) if client-observed p99 exceeds D
//	-slo-errors RATE      fail (exit 1) if hard-error rate exceeds RATE
//	                      (default 0; 503 sheds never count as errors)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8350", "listen address")
		maxBody      = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max admission wait before shedding")
		solveSteps   = flag.Int64("solve-steps", 0, "per-stage solver step budget (0 = unlimited)")
		solveTimeout = flag.Duration("solve-timeout", 0, "per-request solve wall clock (0 = unlimited)")
		maxPrograms  = flag.Int("max-programs", 128, "distinct cached programs before eviction")
		cacheDir     = flag.String("cache-dir", "", "persistent result store directory (empty = memory only)")
		drainGrace   = flag.Duration("drain-grace", 0, "listener grace period between SIGTERM and socket close")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 503s")
		parallel     = flag.Int("parallel-solve", 0, "parallel wave solver workers per analysis (0 = sequential)")
		intern       = flag.Bool("intern", false, "hash-cons points-to sets during every solve (pure memory optimization)")
		faultSeed    = flag.Int64("fault-seed", 0, "arm seeded fault injection (0 = off)")
		faultList    = flag.Bool("fault-list", false, "print every fault-injection site and exit")
		accessLog    = flag.String("access-log", "off", "JSON-lines access log: off, stderr, stdout, or a file path")
		traceRecent  = flag.Int("trace-recent", 0, "request traces kept in the /tracez recent ring (0 = default 64)")
		traceSlowest = flag.Int("trace-slowest", 0, "slowest evicted traces kept anyway (0 = default 8)")
		noTrace      = flag.Bool("no-trace", false, "disable request tracing and /tracez retention")

		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of the daemon")
		target      = flag.String("target", "http://127.0.0.1:8350", "loadgen: daemon base URL")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent client sessions")
		duration    = flag.Duration("duration", 2*time.Second, "loadgen: run length")
		sloP50      = flag.Duration("slo-p50", 0, "loadgen: p50 latency SLO (0 = unchecked)")
		sloP99      = flag.Duration("slo-p99", 0, "loadgen: p99 latency SLO (0 = unchecked)")
		sloErrors   = flag.Float64("slo-errors", 0, "loadgen: max hard-error rate")

		smoke = flag.Bool("smoke", false, "self-contained smoke run (CI)")
	)
	flag.Parse()

	if *faultList {
		fmt.Print(faultSiteList())
		os.Exit(0)
	}

	cfg := serve.Config{
		MaxBodyBytes:   *maxBody,
		MaxInflight:    *maxInflight,
		QueueTimeout:   *queueTimeout,
		SolveSteps:     *solveSteps,
		SolveTimeout:   *solveTimeout,
		MaxPrograms:    *maxPrograms,
		CacheDir:       *cacheDir,
		RetryAfter:     *retryAfter,
		Parallel:       *parallel,
		Intern:         *intern,
		Metrics:        telemetry.New(),
		TraceRecent:    *traceRecent,
		TraceSlowest:   *traceSlowest,
		DisableTracing: *noTrace,
	}
	switch *accessLog {
	case "", "off":
	case "stderr":
		cfg.AccessLog = os.Stderr
	case "stdout":
		cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kscope-serve: -access-log:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	if *faultSeed != 0 {
		plan := faultinject.NewPlan(*faultSeed)
		cfg.Faults = plan
		fmt.Fprintf(os.Stderr, "kscope-serve: chaos mode: %s\n", plan)
	}
	switch {
	case *smoke:
		os.Exit(runSmoke(cfg))
	case *loadgen:
		os.Exit(runLoadgen(*target, *concurrency, *duration,
			serve.SLO{MaxP50: *sloP50, MaxP99: *sloP99, MaxErrorRate: *sloErrors}))
	default:
		os.Exit(runDaemon(*addr, cfg, *drainGrace))
	}
}

// faultSiteList renders every fault-injection site, one per line, for
// -fault-list (shared verbatim with kscope-bench).
func faultSiteList() string {
	var b strings.Builder
	for _, s := range faultinject.Sites() {
		fmt.Fprintln(&b, s)
	}
	return b.String()
}

// runDaemon serves until SIGINT/SIGTERM, then runs the drain sequence.
func runDaemon(addr string, cfg serve.Config, grace time.Duration) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kscope-serve:", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveUntil(ctx, ln, cfg, grace)
}

// serveUntil runs the daemon on ln until ctx is cancelled, then executes the
// drain sequence: BeginDrain turns /readyz 503 and refuses new POST work
// with a typed error while the listener stays open for the grace period (so
// load balancers observe the readiness flip before the socket closes), then
// http.Server.Shutdown waits for in-flight requests, and finally FlushDirty
// retries any result whose disk save failed during the daemon's life.
// Factored out of runDaemon so the graceful-drain regression test can drive
// it with a plain cancellable context instead of a signal.
func serveUntil(ctx context.Context, ln net.Listener, cfg serve.Config, grace time.Duration) int {
	srv := serve.New(cfg)
	if err := srv.PersistError(); err != nil {
		// A daemon asked to be crash-safe must not silently run memory-only.
		fmt.Fprintln(os.Stderr, "kscope-serve: -cache-dir:", err)
		ln.Close()
		return 1
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "kscope-serve: listening on http://%s (%d solve slots, budget %d steps/stage)\n",
		ln.Addr(), capacityOf(cfg), cfg.SolveSteps)
	if cfg.CacheDir != "" {
		go func() {
			if srv.WaitWarm(context.Background()) == nil {
				fmt.Fprintf(os.Stderr, "kscope-serve: warm-load complete (%d records loaded, %d quarantined); ready\n",
					srv.Metrics().Counter("persist/warm-loaded").Value(),
					srv.Metrics().Counter("persist/corrupt-quarantined").Value())
			}
		}()
	}
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "kscope-serve:", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "kscope-serve: shutting down (draining in-flight requests)")
	srv.BeginDrain()
	if grace > 0 {
		time.Sleep(grace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "kscope-serve: shutdown:", err)
		return 1
	}
	if flushed, failed := srv.FlushDirty(); flushed+failed > 0 {
		fmt.Fprintf(os.Stderr, "kscope-serve: flushed %d dirty cache record(s), %d failed\n", flushed, failed)
		if failed > 0 {
			return 1
		}
	}
	return 0
}

func capacityOf(cfg serve.Config) int {
	if cfg.MaxInflight > 0 {
		return cfg.MaxInflight
	}
	return -1 // resolved to GOMAXPROCS inside serve.New
}

// runLoadgen drives load at a running daemon and gates on the SLO.
func runLoadgen(target string, concurrency int, duration time.Duration, slo serve.SLO) int {
	rep, err := serve.RunLoad(context.Background(), serve.LoadOpts{
		Target:      target,
		Concurrency: concurrency,
		Duration:    duration,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kscope-serve -loadgen:", err)
		return 2
	}
	fmt.Print(rep.Text())
	if violations := rep.SLOViolations(slo); len(violations) != 0 {
		fmt.Fprintln(os.Stderr, "SLO gate FAILED:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		return 1
	}
	fmt.Println("SLO gate passed")
	return 0
}

// runSmoke is the CI gate: an in-process daemon on an ephemeral port, a
// /healthz check, ~2s of generated load, one verified query round-trip,
// and a clean graceful shutdown — any step failing fails the run.
func runSmoke(cfg serve.Config) int {
	fail := func(step string, err error) int {
		fmt.Fprintf(os.Stderr, "serve-smoke: %s: %v\n", step, err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen", err)
	}
	srv := serve.New(cfg)
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "serve-smoke: daemon on %s\n", base)

	// 1. The daemon is alive and on its optimistic view.
	var health struct{ Status, View string }
	if err := getJSON(base+"/healthz", &health); err != nil {
		return fail("/healthz", err)
	}
	if health.Status != "ok" || health.View != "optimistic" {
		return fail("/healthz", fmt.Errorf("status=%q view=%q", health.Status, health.View))
	}

	// 2. Two seconds of concurrent load with a generous latency SLO and a
	// zero-hard-error budget.
	rep, err := serve.RunLoad(context.Background(), serve.LoadOpts{
		Target: base, Concurrency: 8, Duration: 2 * time.Second,
	})
	if err != nil {
		return fail("loadgen", err)
	}
	fmt.Print(rep.Text())
	if violations := rep.SLOViolations(serve.SLO{MaxP99: 2 * time.Second}); len(violations) != 0 {
		return fail("SLO gate", fmt.Errorf("%s", strings.Join(violations, "; ")))
	}
	if rep.OK == 0 {
		return fail("loadgen", fmt.Errorf("no successful requests"))
	}

	// 3. One verified query round-trip: a pointer query whose fallback set
	// must be non-empty.
	body := strings.NewReader(`{"name":"smoke","source":"int g;\nint* pick() { return &g; }\nint main() { int* p; p = pick(); return *p; }","fn":"pick"}`)
	resp, err := http.Post(base+"/pointsto", "application/json", body)
	if err != nil {
		return fail("/pointsto", err)
	}
	var pts struct {
		Fallback []string `json:"fallback"`
	}
	err = json.NewDecoder(resp.Body).Decode(&pts)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(pts.Fallback) == 0 {
		return fail("/pointsto", fmt.Errorf("status=%d fallback=%v err=%v", resp.StatusCode, pts.Fallback, err))
	}
	fmt.Fprintf(os.Stderr, "serve-smoke: query round-trip ok (pick() -> %v)\n", pts.Fallback)

	// 4. The Prometheus exposition is scrapeable and carries the daemon's
	// request counters.
	prom, err := getBody(base + "/metricsz?format=prom")
	if err != nil {
		return fail("/metricsz?format=prom", err)
	}
	if !strings.Contains(string(prom), "kscope_serve_requests") {
		return fail("/metricsz?format=prom", fmt.Errorf("exposition missing kscope_serve_requests:\n%.400s", prom))
	}
	fmt.Fprintf(os.Stderr, "serve-smoke: prometheus scrape ok (%d bytes)\n", len(prom))

	// 5. The flight recorder retained the load's traces, and a retained slow
	// request resolves to a Perfetto-loadable trace. The loadgen's slowest
	// ids are tried first; under tens of thousands of smoke requests they may
	// have aged out of the ring (client-observed latency and the server-side
	// durations the slowest shortlist ranks by need not agree), so the
	// index's own retained ids are the fallback.
	var idx struct {
		Recent  []struct{ ID string }
		Slowest []struct{ ID string }
	}
	if err := getJSON(base+"/tracez", &idx); err != nil {
		return fail("/tracez", err)
	}
	if len(idx.Recent) == 0 || len(idx.Slowest) == 0 {
		return fail("/tracez", fmt.Errorf("flight recorder retained no traces after load (%d recent, %d slowest)",
			len(idx.Recent), len(idx.Slowest)))
	}
	var candidates []string
	for _, sr := range rep.Slowest {
		candidates = append(candidates, sr.TraceID)
	}
	candidates = append(candidates, idx.Slowest[0].ID, idx.Recent[0].ID)
	traceID, chrome := "", []byte(nil)
	for _, id := range candidates {
		if id == "" {
			continue
		}
		if data, err := getBody(base + "/tracez?id=" + id); err == nil {
			traceID, chrome = id, data
			break
		}
	}
	if traceID == "" {
		return fail("/tracez?id=", fmt.Errorf("none of %d candidate trace ids resolved", len(candidates)))
	}
	if !strings.Contains(string(chrome), "traceEvents") {
		return fail("/tracez?id="+traceID, fmt.Errorf("export is not Chrome trace JSON:\n%.200s", chrome))
	}
	fmt.Fprintf(os.Stderr, "serve-smoke: slow request trace %s exported (%d bytes)\n", traceID, len(chrome))

	// 6. The live metrics gate: snapshot /metricsz as a baseline, replay the
	// (now cached) query — serve/cache/misses must not move — then inject a
	// synthetic regression into a copy and require the comparison to trip,
	// proving the non-zero-exit path of -compare-metrics against a URL.
	baseline, err := telemetry.LoadSnapshot(base + "/metricsz")
	if err != nil {
		return fail("compare-metrics baseline", err)
	}
	watch := []string{"serve/cache/misses"}
	for i := 0; i < 5; i++ {
		body := strings.NewReader(`{"name":"smoke","source":"int g;\nint* pick() { return &g; }\nint main() { int* p; p = pick(); return *p; }","fn":"pick"}`)
		resp, err := http.Post(base+"/pointsto", "application/json", body)
		if err != nil {
			return fail("cached replay", err)
		}
		resp.Body.Close()
	}
	cur, err := telemetry.LoadSnapshot(base + "/metricsz")
	if err != nil {
		return fail("compare-metrics current", err)
	}
	if regs := telemetry.CompareSnapshots(baseline, cur, watch, 0).Regressions(); len(regs) > 0 {
		return fail("live metrics gate", fmt.Errorf("cached replays regressed %v", regs))
	}
	injected := cur
	injected.Counters = map[string]int64{}
	for k, v := range cur.Counters {
		injected.Counters[k] = v
	}
	injected.Counters["serve/cache/misses"] = 2*cur.Counters["serve/cache/misses"] + 10
	if regs := telemetry.CompareSnapshots(baseline, injected, watch, 0.10).Regressions(); len(regs) == 0 {
		return fail("live metrics gate", fmt.Errorf("injected cache-miss regression not flagged"))
	}
	fmt.Fprintln(os.Stderr, "serve-smoke: live metrics gate ok (steady state clean, injected regression flagged)")

	// 7. Clean shutdown.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fail("shutdown", err)
	}
	fmt.Fprintln(os.Stderr, "serve-smoke: clean shutdown; PASS")
	return 0
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %.200s", resp.StatusCode, data)
	}
	return data, nil
}
