package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func TestFaultSiteList(t *testing.T) {
	out := faultSiteList()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if want := len(faultinject.Sites()); len(lines) != want {
		t.Fatalf("faultSiteList printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, site := range faultinject.Sites() {
		if !strings.Contains(out, string(site)) {
			t.Errorf("faultSiteList missing site %s", site)
		}
	}
}

// TestGracefulDrain is the shutdown-sequence regression test: an /analyze
// request in flight when the stop signal arrives must complete with 200,
// new POST work during the drain grace period must be refused with the
// typed "draining" 503 while the GET endpoints keep serving, and the
// process must exit 0 with every solved result persisted.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	cfg := serve.Config{Metrics: telemetry.New(), CacheDir: dir, DisableTracing: true}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exit := make(chan int, 1)
	go func() { exit <- serveUntil(ctx, ln, cfg, 2*time.Second) }()
	base := "http://" + ln.Addr().String()

	// Readiness: the (empty-store) warm-load finishes almost immediately.
	waitStatus(t, base+"/readyz", http.StatusOK)

	// A completed solve before the signal: its record must reach the disk.
	srcA := `{"source":"int ga;\nint* picka() { return &ga; }\nint main() { int* p; p = picka(); return *p; }"}`
	status, body := post(t, base+"/analyze", srcA)
	if status != http.StatusOK {
		t.Fatalf("/analyze before drain: %d %s", status, body)
	}

	// The in-flight request: send the headers and the first body byte, then
	// hold the rest so the handler sits blocked on the body read. The
	// request counter increments at handler entry — synchronously before
	// the draining gate is evaluated — so once it reads 2 this request has
	// been admitted.
	srcB := `{"source":"int gb;\nint* pickb() { return &gb; }\nint main() { int* q; q = pickb(); return *q; }"}`
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/analyze", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(len(srcB))
	req.Header.Set("Content-Type", "application/json")
	type result struct {
		status int
		body   string
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: string(data)}
	}()
	if _, err := pw.Write([]byte(srcB[:1])); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, base, "serve/requests/analyze", 2)

	// The stop signal: drain begins, the listener stays open for the grace
	// period, readiness flips to draining.
	cancel()
	waitStatus(t, base+"/readyz", http.StatusServiceUnavailable)

	// New POST work is refused with the typed draining error...
	status, body = post(t, base+"/analyze", srcA)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/analyze during drain: %d %s, want 503", status, body)
	}
	var apiErr struct{ Kind string }
	if err := json.Unmarshal([]byte(body), &apiErr); err != nil || apiErr.Kind != "draining" {
		t.Fatalf("/analyze during drain: kind=%q err=%v body=%s", apiErr.Kind, err, body)
	}
	// ...while liveness keeps answering.
	waitStatus(t, base+"/healthz", http.StatusOK)

	// Releasing the held body lets the in-flight request run to completion
	// even though the daemon is draining.
	if _, err := pw.Write([]byte(srcB[1:])); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	r := <-inflight
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight /analyze: status=%d err=%v body=%s", r.status, r.err, r.body)
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serveUntil exited %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serveUntil did not exit after drain")
	}

	// Both solves — including the one that finished mid-drain — persisted.
	recs, err := filepath.Glob(filepath.Join(dir, "*.rec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("store holds %d records after drain, want 2 (%v)", len(recs), recs)
	}
}

// TestCacheDirOpenFailure: a daemon asked to be crash-safe refuses to start
// when the store cannot be opened, rather than silently running memory-only.
func TestCacheDirOpenFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{Metrics: telemetry.New(), CacheDir: file, DisableTracing: true}
	if code := serveUntil(context.Background(), ln, cfg, 0); code != 1 {
		t.Fatalf("serveUntil with unusable -cache-dir exited %d, want 1", code)
	}
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(data)
}

// waitStatus polls url until it answers with the wanted status code.
func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never reached status %d (last: %v, err=%v)", url, want, resp, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitCounter polls /metricsz until the named counter reaches want.
func waitCounter(t *testing.T, base, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := telemetry.LoadSnapshot(base + "/metricsz")
		if err == nil && snap.Counters[name] >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d (last snapshot err=%v)", name, want, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
