# Development entry points for the Kaleidoscope reproduction. Everything is
# plain go-tool invocations; the Makefile just names the common bundles.

GO ?= go

.PHONY: all build test race vet bench check

all: check

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite (the tier-1 gate)
test:
	$(GO) test ./...

## race: race-detect the concurrent packages (worker pool, telemetry)
race:
	$(GO) test -race ./internal/runner ./internal/telemetry

## vet: static checks
vet:
	$(GO) vet ./...

## bench: run the evaluation benchmarks
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## check: everything a PR must pass
check: build vet test race
