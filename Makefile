# Development entry points for the Kaleidoscope reproduction. Everything is
# plain go-tool invocations; the Makefile just names the common bundles.

GO ?= go

.PHONY: all build test race race-parallel race-intern vet bench bench-json bench-smoke fuzz-smoke chaos-smoke serve-smoke persist-smoke check

all: check

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite (the tier-1 gate)
test:
	$(GO) test ./...

## race: race-detect the concurrent packages (worker pool, telemetry,
## switcher/monitor runtime, interpreter, solver, chaos harness, service,
## persistent store, daemon drain sequence)
race:
	$(GO) test -race ./internal/runner ./internal/telemetry ./internal/memview ./internal/interp ./internal/pointsto ./internal/chaos ./internal/serve ./internal/persist ./cmd/kscope-serve

## race-parallel: the parallel wave solver's byte-identity harness under the
## race detector — the full differential strategy cube (worklist / wave /
## parallel x 1,2,8 workers x delta x prep), the parallel budget/resume,
## determinism, telemetry, and tracer-fallback tests, the seeded corpus
## of the parallel-equivalence fuzzer, the request-trace attachment test
## (parallel wave spans land in traces without a sequential fallback), and
## the concurrent trace/flight-recorder hammer
race-parallel:
	$(GO) test -race -run '^(TestDifferential|TestParallel|TestTopoOrderLevels|FuzzParallelEquivalence)' -v ./internal/pointsto
	$(GO) test -race -run '^(TestCacheParallel|TestCacheComputeOptsParallel|TestParallel)' ./internal/runner ./internal/serve ./internal/telemetry

## race-intern: the hash-consed interning layer's byte-identity harness
## under the race detector — the full differential strategy cube with the
## intern axis (worklist / wave / parallel x delta x prep x intern), the
## incremental-restore oracle mutating shared sets through copy-on-write,
## the interning unit and telemetry tests, the seeded corpora of the
## intern-equivalence and intern-model fuzzers, and the cache / serve /
## chaos plumbing legs that solve interned under load
race-intern:
	$(GO) test -race -run '^(TestDifferential|TestIntern|FuzzInternEquivalence)' -v ./internal/pointsto
	$(GO) test -race -run '^(TestIntern|FuzzIntern)' ./internal/bitset
	$(GO) test -race -short -run '^(TestCacheIntern|TestIntern|TestChaosIntern)' ./internal/runner ./internal/serve ./internal/chaos

## vet: static checks
vet:
	$(GO) vet ./...

## bench: run the evaluation benchmarks
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## bench-json: solver-core ablation (full / delta / prep / parallel /
## intern) over the paper apps and the scaled randprog family, exported
## machine-readable to BENCH_solver.json (ns/op, allocs/op, bytes/op, graph
## sizes, propagated-bit and preprocessing counters per workload and mode).
## On hosts with >= 4 CPUs it additionally gates a >= 2x parallel-solver
## speedup on randprog-100k, and at the 10k tier a >= 5x allocated-bytes
## reduction from interning. CI uploads the export as the bench-trajectory
## artifact; the committed BENCH_solver.json is the reviewable snapshot.
bench-json:
	BENCH_JSON=BENCH_solver.json $(GO) test -run '^TestWriteBenchJSON$$' -timeout 30m -v .

## bench-smoke: fast CI gate for the preprocessing pipeline — asserts prep
## solves randprog-1k to the same fixpoint as the no-prep baseline while
## merging nodes, then runs one timed iteration of the scaled benchmark
bench-smoke:
	$(GO) test -run '^TestScaledPrepSmoke$$' -v .
	$(GO) test -run '^$$' -bench 'BenchmarkSolverPrep/randprog-1k' -benchtime 1x .

## chaos-smoke: fast robustness gate — the fault-injection differential
## harness under -race over a small seed matrix (8 plans in the test, 2 via
## the CLI), asserting every app lands identical / sound-fallback /
## typed-error, never silently wrong
chaos-smoke:
	$(GO) test -race -short -run '^TestChaos' -v ./internal/chaos
	$(GO) run ./cmd/kscope-bench -chaos 1 -chaos-plans 2

## serve-smoke: the daemon gate — start kscope-serve in-process on an
## ephemeral port, health-check it, drive ~2s of generated load under an
## SLO, verify one query round-trip, scrape /metricsz?format=prom, export a
## retained slow-request trace from /tracez, gate a live metrics comparison
## (steady state clean + injected regression flagged), and shut down
## cleanly (exit 1 on any step failing); see docs/RUNBOOK.md
serve-smoke:
	$(GO) run ./cmd/kscope-serve -smoke

## persist-smoke: the crash-safety gate under -race — kill+restart with a
## persistent store (warm-served answers byte-identical, cached=true),
## corruption quarantined with its counter bumped and the result
## transparently re-solved, the chaos restart leg across all three persist
## fault sites, and the daemon's graceful-drain sequence; then the CLI
## restart leg over a seeded plan
persist-smoke:
	$(GO) test -race -run '^(TestRestartWarmCache|TestCorruptRecordQuarantined|TestRecordKeyMismatch|TestEvictionDeletesDiskRecords|TestWarmLoadBounded|TestWriteFailDirty|TestDrainRefuses)' -v ./internal/serve
	$(GO) test -race -run '^TestRestartLeg' -v ./internal/chaos
	$(GO) test -race -run '^(TestGracefulDrain|TestCacheDirOpenFailure)' -v ./cmd/kscope-serve
	$(GO) run ./cmd/kscope-bench -chaos 1 -chaos-plans 1 -chaos-restart

## fuzz-smoke: ~10s native-fuzz sanity pass over the model-based bitset
## fuzzer, the solver-equivalence fuzzer, and the persistent-store
## round-trip fuzzer
fuzz-smoke:
	$(GO) test ./internal/bitset -run '^$$' -fuzz '^FuzzBitsetModel$$' -fuzztime 5s
	$(GO) test ./internal/bitset -run '^$$' -fuzz '^FuzzInternModel$$' -fuzztime 5s
	$(GO) test ./internal/pointsto -run '^$$' -fuzz '^FuzzSolverEquivalence$$' -fuzztime 5s
	$(GO) test ./internal/persist -run '^$$' -fuzz '^FuzzPersistRoundTrip$$' -fuzztime 5s

## check: everything a PR must pass
check: build vet test race race-intern fuzz-smoke
