package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

// solverBenchRow is one (workload, solver mode) measurement in the
// machine-readable solver benchmark export.
type solverBenchRow struct {
	App            string  `json:"app"`
	Mode           string  `json:"mode"` // "full", "delta", "prep", "parallel", "intern", or "parallel-gate"
	GraphNodes     int     `json:"graph_nodes"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	BitsPropagated int     `json:"bits_propagated"`
	BitsAvoided    int     `json:"bits_avoided"`
	DeltaFlushes   int     `json:"delta_flushes"`
	WorklistPops   int     `json:"worklist_pops"`
	SCCPasses      int     `json:"scc_passes"`
	PrepMerged     int     `json:"prep_merged,omitempty"`
	HCDCollapses   int     `json:"hcd_collapses,omitempty"`
	LCDCollapses   int     `json:"lcd_collapses,omitempty"`
	SpeedupVsFull  float64 `json:"speedup_vs_full,omitempty"`
	Workers        int     `json:"workers,omitempty"`        // parallel mode only
	SpeedupVsSeq   float64 `json:"speedup_vs_seq,omitempty"` // parallel vs same-config sequential
	BytesVsFull    float64 `json:"bytes_vs_full,omitempty"`  // intern mode: full bytes/op over interned bytes/op
}

// benchModes are the solver configurations the export compares, all
// relative to "full" (plain worklist, full re-propagation, no offline
// preprocessing):
//
//	delta    — difference propagation forced on, no preprocessing
//	prep     — offline HVN + hybrid cycle detection, delta in auto mode
//	           (the package default configuration)
//	parallel — the prep configuration solved by the parallel wave strategy
//	           at GOMAXPROCS workers (byte-identical fixpoint; the timing
//	           delta against "prep" is the multicore payoff)
//	intern   — the full configuration with hash-consed set interning
//	           (byte-identical fixpoint; the bytes/op delta against "full"
//	           is the sharing payoff, gated below)
var benchModes = []struct {
	name     string
	delta    *bool // nil = auto
	prep     bool
	parallel bool
	intern   bool
}{
	{"full", boolPtr(false), false, false, false},
	{"delta", boolPtr(true), false, false, false},
	{"prep", nil, true, false, false},
	{"parallel", nil, true, true, false},
	{"intern", boolPtr(false), false, false, true},
}

func boolPtr(b bool) *bool { return &b }

// TestWriteBenchJSON runs the solver-mode ablation under testing.Benchmark
// and writes the results to the file named by the BENCH_JSON environment
// variable (the `make bench-json` entry point; the test is skipped when the
// variable is unset). The workload set is the nine paper apps plus the
// scaled randprog-1k/10k family (randprog-100k exists for on-demand runs via
// BenchmarkSolverPrep but would dominate the export's runtime).
//
// Beyond exporting numbers, the test enforces the regression contracts:
//
//   - difference propagation never consumes more pointee bits than full
//     re-propagation on any workload, and strictly fewer in aggregate;
//   - prep mode merges nodes offline (prep_merged > 0) and never runs more
//     sccPass sweeps than the no-prep baseline;
//   - on graphs of >= 10k nodes, prep mode is at least 1.5x faster than the
//     no-prep full solver (the tentpole's acceptance bar; measured ~3x);
//   - on graphs of >= 10k nodes, hash-consed set interning cuts allocated
//     bytes per solve at least 5x against the identical full solve without
//     regressing wall clock past 10% (measured ~20x less memory and ~5x
//     faster: the memory-regression gate for the interning tentpole);
//   - on machines with >= 4 CPUs, the parallel wave strategy solves
//     randprog-100k at least 2x faster than the same-configuration
//     sequential solve (skipped — and logged — on narrower machines, where
//     there is no fan-out to measure; see EXPERIMENTS.md for the recipe).
//
// Small-app timing is reported, not asserted — CI machines are too noisy for
// sub-millisecond gates; the exported JSON is the reviewable record.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<file> to run the solver benchmark export")
	}
	workers := runtime.GOMAXPROCS(0)
	apps := append(workload.Apps(), workload.ScaledApps()[:2]...)
	var rows []solverBenchRow
	var totalDelta, totalFull int
	for _, app := range apps {
		m := app.MustModule()
		perMode := map[string]*solverBenchRow{}
		for _, mode := range benchModes {
			solve := func() (pointsto.Stats, int) {
				a := pointsto.New(m, invariant.All())
				if mode.delta != nil {
					a.SetDelta(*mode.delta)
				}
				a.SetPrep(mode.prep)
				if mode.parallel {
					a.SetParallel(workers)
				}
				a.SetIntern(mode.intern)
				r := a.Solve()
				return r.Stats(), r.NodeCount()
			}
			st, nodes := solve()
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					solve()
				}
			})
			row := solverBenchRow{
				App:            app.Name,
				Mode:           mode.name,
				GraphNodes:     nodes,
				NsPerOp:        res.NsPerOp(),
				AllocsPerOp:    res.AllocsPerOp(),
				BytesPerOp:     res.AllocedBytesPerOp(),
				BitsPropagated: st.BitsPropagated,
				BitsAvoided:    st.BitsAvoided,
				DeltaFlushes:   st.DeltaFlushes,
				WorklistPops:   st.Iterations,
				SCCPasses:      st.SCCPasses,
				PrepMerged:     st.PrepMerged,
				HCDCollapses:   st.HCDCollapses,
				LCDCollapses:   st.LCDCollapses,
			}
			rows = append(rows, row)
			perMode[mode.name] = &rows[len(rows)-1]
		}
		d, f, p := perMode["delta"], perMode["full"], perMode["prep"]
		if d.BitsPropagated > f.BitsPropagated {
			t.Errorf("%s: delta propagated %d bits, full %d — delta must never be higher",
				app.Name, d.BitsPropagated, f.BitsPropagated)
		}
		totalDelta += d.BitsPropagated
		totalFull += f.BitsPropagated
		if p.SCCPasses > f.SCCPasses {
			t.Errorf("%s: prep ran %d sccPass sweeps, no-prep %d — prep must not add sweeps",
				app.Name, p.SCCPasses, f.SCCPasses)
		}
		if p.PrepMerged+p.HCDCollapses+p.LCDCollapses == 0 {
			t.Errorf("%s: prep mode merged nothing offline or online", app.Name)
		}
		d.SpeedupVsFull = float64(f.NsPerOp) / float64(d.NsPerOp)
		p.SpeedupVsFull = float64(f.NsPerOp) / float64(p.NsPerOp)
		par := perMode["parallel"]
		par.Workers = workers
		par.SpeedupVsFull = float64(f.NsPerOp) / float64(par.NsPerOp)
		par.SpeedupVsSeq = float64(p.NsPerOp) / float64(par.NsPerOp)
		in := perMode["intern"]
		in.SpeedupVsFull = float64(f.NsPerOp) / float64(in.NsPerOp)
		if in.BytesPerOp > 0 {
			in.BytesVsFull = float64(f.BytesPerOp) / float64(in.BytesPerOp)
		}
		if f.GraphNodes >= 10000 && p.SpeedupVsFull < 1.5 {
			t.Errorf("%s (%d nodes): prep speedup %.2fx vs full, want >= 1.5x",
				app.Name, f.GraphNodes, p.SpeedupVsFull)
		}
		// Memory-regression gate for interning: at the 10k tier the
		// hash-consed pool must cut allocated bytes by >= 5x against the
		// identical full-propagation solve (measured ~20x: the fixpoint's
		// repeated Elements() traffic collapses onto memoized canonical
		// slices), and interning must never cost wall clock there — the
		// issue's bar is no regression past 10%. Small-app timing stays
		// reported-not-asserted, like every other mode.
		if f.GraphNodes >= 10000 {
			if f.BytesPerOp < 5*in.BytesPerOp {
				t.Errorf("%s (%d nodes): interning cut bytes/op only %.2fx (%d -> %d), want >= 5x",
					app.Name, f.GraphNodes, in.BytesVsFull, f.BytesPerOp, in.BytesPerOp)
			}
			if float64(in.NsPerOp) > 1.10*float64(f.NsPerOp) {
				t.Errorf("%s (%d nodes): interning regressed wall clock %.2fx (%d ns vs %d ns), want <= 1.10x",
					app.Name, f.GraphNodes, float64(in.NsPerOp)/float64(f.NsPerOp), in.NsPerOp, f.NsPerOp)
			}
		}
		t.Logf("%-13s %7d nodes | full %9d ns | delta %9d ns (%.2fx) | prep %9d ns (%.2fx, merged=%d hcd=%d) | intern %9d ns (%.1fx bytes)",
			app.Name, f.GraphNodes, f.NsPerOp, d.NsPerOp, d.SpeedupVsFull,
			p.NsPerOp, p.SpeedupVsFull, p.PrepMerged, p.HCDCollapses, in.NsPerOp, in.BytesVsFull)
	}
	if totalDelta >= totalFull {
		t.Errorf("aggregate: delta propagated %d bits, full %d — delta must be strictly lower",
			totalDelta, totalFull)
	}
	// Multicore speedup gate: on a machine with real fan-out available, the
	// parallel wave strategy must pay at scale — >= 2x over the identical
	// sequential configuration on randprog-100k (wide levels, ~100k nodes).
	// A narrower machine has nothing to fan out, so the gate is skipped (and
	// said so) rather than diluted; EXPERIMENTS.md records the recipe for
	// running it on a multicore host.
	if runtime.NumCPU() >= 4 {
		m := workload.ScaledApps()[2].MustModule() // randprog-100k
		timeSolve := func(par int) int64 {
			return testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a := pointsto.New(m, invariant.All())
					a.SetPrep(true)
					if par > 0 {
						a.SetParallel(par)
					}
					a.Solve()
				}
			}).NsPerOp()
		}
		seqNs := timeSolve(0)
		parNs := timeSolve(workers)
		speedup := float64(seqNs) / float64(parNs)
		rows = append(rows, solverBenchRow{
			App: "randprog-100k", Mode: "parallel-gate", NsPerOp: parNs,
			Workers: workers, SpeedupVsSeq: speedup,
		})
		t.Logf("randprog-100k multicore gate: seq %d ns, parallel(%d) %d ns — %.2fx", seqNs, workers, parNs, speedup)
		if speedup < 2.0 {
			t.Errorf("randprog-100k: parallel speedup %.2fx with %d workers, want >= 2x", speedup, workers)
		}
	} else {
		t.Logf("multicore speedup gate skipped: %d CPU(s) < 4; run `make bench-json` on a multicore host (see EXPERIMENTS.md)", runtime.NumCPU())
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", path, len(rows))
}
