package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

// solverBenchRow is one (workload, propagation mode) measurement in the
// machine-readable solver benchmark export.
type solverBenchRow struct {
	App            string  `json:"app"`
	Mode           string  `json:"mode"` // "delta" or "full"
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	BitsPropagated int     `json:"bits_propagated"`
	BitsAvoided    int     `json:"bits_avoided"`
	DeltaFlushes   int     `json:"delta_flushes"`
	WorklistPops   int     `json:"worklist_pops"`
	SpeedupVsFull  float64 `json:"speedup_vs_full,omitempty"`
}

// TestWriteBenchJSON runs the solver-core delta ablation under
// testing.Benchmark and writes the results to the file named by the
// BENCH_JSON environment variable (the `make bench-json` entry point; the
// test is skipped when the variable is unset). Beyond exporting numbers, it
// enforces the regression contract: difference propagation never consumes
// more pointee bits than full re-propagation on any workload, and strictly
// fewer in aggregate (a workload that converges in a single pass has nothing
// to save — every set is consumed exactly once either way).
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<file> to run the solver benchmark export")
	}
	var rows []solverBenchRow
	var totalDelta, totalFull int
	for _, app := range workload.Apps() {
		m := app.MustModule()
		perMode := map[string]*solverBenchRow{}
		for _, mode := range []struct {
			name  string
			delta bool
		}{{"delta", true}, {"full", false}} {
			solve := func() pointsto.Stats {
				a := pointsto.New(m, invariant.All())
				a.SetDelta(mode.delta)
				return a.Solve().Stats()
			}
			st := solve()
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					solve()
				}
			})
			row := solverBenchRow{
				App:            app.Name,
				Mode:           mode.name,
				NsPerOp:        res.NsPerOp(),
				AllocsPerOp:    res.AllocsPerOp(),
				BytesPerOp:     res.AllocedBytesPerOp(),
				BitsPropagated: st.BitsPropagated,
				BitsAvoided:    st.BitsAvoided,
				DeltaFlushes:   st.DeltaFlushes,
				WorklistPops:   st.Iterations,
			}
			perMode[mode.name] = &row
			rows = append(rows, row)
		}
		d, f := perMode["delta"], perMode["full"]
		if d.BitsPropagated > f.BitsPropagated {
			t.Errorf("%s: delta propagated %d bits, full %d — delta must never be higher",
				app.Name, d.BitsPropagated, f.BitsPropagated)
		}
		totalDelta += d.BitsPropagated
		totalFull += f.BitsPropagated
		// Annotate the delta row with the measured speedup; timing is
		// reported, not asserted (CI machines are too noisy for a hard gate —
		// the exported JSON is the reviewable record).
		rows[len(rows)-2].SpeedupVsFull = float64(f.NsPerOp) / float64(d.NsPerOp)
		t.Logf("%-10s delta %8d ns/op (%6d bits) | full %8d ns/op (%6d bits) | speedup %.2fx",
			app.Name, d.NsPerOp, d.BitsPropagated, f.NsPerOp, f.BitsPropagated,
			float64(f.NsPerOp)/float64(d.NsPerOp))
	}
	if totalDelta >= totalFull {
		t.Errorf("aggregate: delta propagated %d bits, full %d — delta must be strictly lower",
			totalDelta, totalFull)
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d rows)", path, len(rows))
}
