package repro

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

// TestScaledPrepSmoke is the CI bench-smoke gate: on the smallest scaled
// workload it checks that offline preprocessing actually does work (merges
// nodes, saves sccPass sweeps) and that the solved points-to relation is
// observably identical to the no-prep baseline. The timing claims live in
// the opt-in benchmarks; this test pins the correctness and do-something
// halves of the tentpole so a regression fails fast on every push.
func TestScaledPrepSmoke(t *testing.T) {
	m := workload.ByName("randprog-1k").MustModule()
	solve := func(prep bool) (*pointsto.Result, pointsto.Stats) {
		a := pointsto.New(m, invariant.All())
		a.SetPrep(prep)
		r := a.Solve()
		return r, r.Stats()
	}
	rOn, sOn := solve(true)
	rOff, sOff := solve(false)

	if sOn.PrepMerged == 0 {
		t.Errorf("prep merged no nodes offline on randprog-1k: %+v", sOn)
	}
	if sOn.HCDCollapses == 0 {
		t.Errorf("hybrid cycle detection fired no online collapses: %+v", sOn)
	}
	if sOn.SCCPasses > sOff.SCCPasses {
		t.Errorf("prep ran %d sccPass sweeps, no-prep %d — prep must not add sweeps",
			sOn.SCCPasses, sOff.SCCPasses)
	}
	if sOn.Iterations >= sOff.Iterations {
		t.Errorf("prep popped %d worklist items, no-prep %d — the merged graph should be cheaper",
			sOn.Iterations, sOff.Iterations)
	}

	if on, off := observableFacts(rOn), observableFacts(rOff); on != off {
		t.Errorf("prep changed the solved relation:\n--- no-prep\n%s\n--- prep\n%s", off, on)
	}
}

// observableFacts renders the externally visible fixpoint — every top-level
// pointer's set size plus every indirect-call site's resolved targets — as a
// canonical string for equality comparison across solver configurations.
func observableFacts(r *pointsto.Result) string {
	var lines []string
	for _, p := range r.TopLevelPointers() {
		lines = append(lines, fmt.Sprintf("ptr %s.%s = %d", p.Fn, p.Reg, r.SizeOf(p)))
	}
	for _, site := range r.ICallSites() {
		targets := r.CallTargets(site)
		sort.Strings(targets)
		lines = append(lines, fmt.Sprintf("icall %d -> %s", site, strings.Join(targets, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
