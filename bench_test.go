// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B benchmarks, plus ablation benches for the
// design decisions called out in DESIGN.md §5. Run:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fuzzer"
	"repro/internal/interp"
	"repro/internal/invariant"
	"repro/internal/pointsto"
	"repro/internal/workload"
)

var benchOpt = experiments.Options{Requests: 100, PerfRequests: 400, Runs: 1, FuzzIters: 60, Seed: 1}

// BenchmarkFigure1 regenerates the static-vs-observed CFI comparison.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure1Compute(benchOpt)
		if len(d.Sites) == 0 {
			b.Fatal("no callsites")
		}
	}
}

// BenchmarkTable2 regenerates the application inventory.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3 regenerates the precision table: 9 applications × 8
// configurations × (fallback + optimistic) analyses.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3Data(experiments.AnalyzeAll())
		if len(rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable4 regenerates the benchmark-driver coverage table.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4Data(benchOpt)
		if len(rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable5 regenerates the fuzzing-campaign coverage table.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5Data(benchOpt)
		if len(rows) != 9 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure10to12 regenerates the distribution figures (they share
// one analysis sweep).
func BenchmarkFigure10to12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := experiments.AnalyzeAll()
		if len(experiments.Figure10(data)) == 0 ||
			len(experiments.Figure11(data)) == 0 ||
			len(experiments.Figure12(data)) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure13 regenerates the throughput figure.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure13Data(benchOpt)
		if len(rows) != 9 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkAnalyze measures the IGO analysis per application and
// configuration (solver cost ablation across the likely-invariant policies).
func BenchmarkAnalyze(b *testing.B) {
	for _, app := range workload.Apps() {
		m := app.MustModule()
		for _, cfg := range []invariant.Config{{}, invariant.All()} {
			b.Run(fmt.Sprintf("%s/%s", app.Name, cfg.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pointsto.New(m, cfg).Solve()
				}
			})
		}
	}
}

// BenchmarkExecution measures interpreter throughput per hardening level:
// Unhardened (no checks), Baseline (fallback CFI only), and Kaleidoscope
// (optimistic CFI + monitors) — the microbenchmark behind Figure 13.
func BenchmarkExecution(b *testing.B) {
	for _, name := range []string{"mbedtls", "memcached", "tinydtls"} {
		app := workload.ByName(name)
		m := app.MustModule()
		inputs := app.Requests(50, 1)

		b.Run(name+"/Unhardened", func(b *testing.B) {
			mc := interp.New(m, interp.Config{})
			for i := 0; i < b.N; i++ {
				if tr := mc.Run("main", inputs); tr.Err != nil {
					b.Fatal(tr.Err)
				}
			}
		})
		for _, cfg := range []invariant.Config{{}, invariant.All()} {
			h := core.Analyze(m, cfg).Harden()
			label := "Baseline"
			if cfg.Any() {
				label = "Kaleidoscope"
			}
			b.Run(name+"/"+label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := h.NewExecution(false)
					if tr := e.Run("main", inputs); tr.Err != nil {
						b.Fatal(tr.Err)
					}
				}
			})
		}
	}
}

// BenchmarkFuzzer measures fuzzing executions per second on the smallest
// workload.
func BenchmarkFuzzer(b *testing.B) {
	app := workload.ByName("tinydtls")
	h := core.Analyze(app.MustModule(), invariant.All()).Harden()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fuzzer.Run(h, "main", app.FuzzSeeds, fuzzer.Config{Iterations: 20, Seed: int64(i + 1)})
	}
}

// BenchmarkIntrospection measures the overhead of the §4.1 tracing
// instrumentation relative to BenchmarkAnalyze (the paper calls it
// "non-trivial" but off the hot path).
func BenchmarkIntrospection(b *testing.B) {
	m := workload.ByName("libpng").MustModule()
	for i := 0; i < b.N; i++ {
		a := pointsto.New(m, invariant.Config{})
		a.SetTracer(nopTracer{})
		a.Solve()
	}
}

type nopTracer struct{}

func (nopTracer) Growth(pointsto.GrowthEvent) {}
func (nopTracer) Cycle(int, bool)             {}

// BenchmarkSolverStrategy compares the three solving strategies (DESIGN.md
// §5): worklist with cycle collapse, naive worklist (no copy-cycle
// collapse), and wave propagation. Results are identical (asserted in
// internal/pointsto tests); only cost differs.
func BenchmarkSolverStrategy(b *testing.B) {
	m := workload.ByName("mbedtls").MustModule()
	b.Run("WorklistCollapse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pointsto.New(m, invariant.All()).Solve()
		}
	})
	b.Run("NaiveWorklist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := pointsto.New(m, invariant.All())
			a.SetNaive(true)
			a.Solve()
		}
	})
	b.Run("WavePropagation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := pointsto.New(m, invariant.All())
			a.SetWave(true)
			a.Solve()
		}
	})
}

// BenchmarkSolverDelta compares difference propagation (the default) against
// full re-propagation on the solver core, per workload. Results are
// identical (asserted by the differential oracle in internal/pointsto); the
// delta variant propagates strictly fewer pointee bits, which bench-json
// verifies from the solver statistics.
func BenchmarkSolverDelta(b *testing.B) {
	for _, app := range workload.Apps() {
		m := app.MustModule()
		for _, mode := range []struct {
			name  string
			delta bool
		}{{"delta", true}, {"full", false}} {
			b.Run(app.Name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a := pointsto.New(m, invariant.All())
					a.SetDelta(mode.delta)
					a.Solve()
				}
			})
		}
	}
}

// BenchmarkSolverPrep compares offline preprocessing (HVN variable
// substitution + hybrid cycle detection, the default) against the no-prep
// worklist solver on the scaled benchmark family, where constraint graphs
// are large enough (1k-100k nodes) for the strategies to actually diverge.
// Results are identical (asserted by the differential oracle and the prep
// tests in internal/pointsto); only cost differs. The 100k tier takes
// seconds per solve — select it explicitly with
// `-bench BenchmarkSolverPrep/randprog-100k` when needed.
func BenchmarkSolverPrep(b *testing.B) {
	for _, app := range workload.ScaledApps() {
		app := app
		for _, mode := range []struct {
			name string
			prep bool
		}{{"prep", true}, {"noprep", false}} {
			b.Run(app.Name+"/"+mode.name, func(b *testing.B) {
				m := app.MustModule() // memoized; lazy so -bench filters skip the compile
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a := pointsto.New(m, invariant.All())
					a.SetPrep(mode.prep)
					a.Solve()
				}
			})
		}
	}
}

// BenchmarkIncrementalRestore compares a full re-analysis against an
// incremental Restore after one PA violation (the §8 trade-off).
func BenchmarkIncrementalRestore(b *testing.B) {
	m := workload.ByName("mbedtls").MustModule()
	findPA := func(r interface{ Invariants() []invariant.Record }) *invariant.Record {
		for _, rec := range r.Invariants() {
			if rec.Kind == invariant.PA {
				rc := rec
				return &rc
			}
		}
		return nil
	}
	b.Run("FullReanalysis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pointsto.New(m, invariant.Config{Ctx: true, PWC: true}).Solve()
		}
	})
	b.Run("IncrementalRestore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r := pointsto.New(m, invariant.All()).Solve()
			rec := findPA(r)
			if rec == nil {
				b.Fatal("no PA invariant")
			}
			b.StartTimer()
			if err := r.Restore(*rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalyzeAllSession measures the full 9-app × 8-config analysis
// matrix through the worker-pool session at several pool widths. On a
// multicore host the parallel variants approach linear speedup; on one core
// they measure the pool's scheduling overhead (which should be negligible).
func BenchmarkAnalyzeAllSession(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.NewSession(benchOpt, workers, nil)
				if len(s.AnalyzeAll()) != 9 {
					b.Fatal("bad matrix")
				}
			}
		})
	}
}

// BenchmarkSessionReuse measures an evaluation-shaped sequence (Table 3
// data, Table 4, debloating) on one shared session, where every artifact
// after the first hits the memoized analysis cache.
func BenchmarkSessionReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(benchOpt, 1, nil)
		if len(s.AnalyzeAll()) != 9 || len(s.Table4Data()) != 9 || len(s.ExtDebloatData()) != 9 {
			b.Fatal("bad session")
		}
	}
}
